package engine

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
)

// planned returns opts with a planner attached and a trace to read the
// cache outcome from.
func planned(opts QueryOptions, p *plan.Planner, tr *obs.QueryStats) QueryOptions {
	opts.Planner = p
	opts.Trace = tr
	return opts
}

// TestPlannerParityProperty is the planner's correctness bar: across graph
// sizes, densities, radii and both query modes, a planner-on Match answers
// byte-identically to the planner-off engine — on the cache-miss first run
// AND on the cache-hit repeat.
func TestPlannerParityProperty(t *testing.T) {
	for _, n := range []int{60, 200, 400} {
		for _, alpha := range []float64{0.8, 1.2, 2.0} {
			if n == 400 && alpha == 0.8 {
				continue // densest large combo adds ~10s for no extra coverage
			}
			g := generator.Synthetic(n, alpha, 8, int64(n)+int64(alpha*10))
			e := New(g, Config{Workers: 2})
			q := generator.SamplePattern(g, generator.PatternOptions{Nodes: 4, Alpha: alpha, Seed: int64(n)})
			if q.NumNodes() == 0 {
				t.Fatalf("n=%d alpha=%.1f: empty pattern", n, alpha)
			}
			radii := []int{0, 1, 2}
			if n == 400 {
				radii = []int{0, 1} // radius-2 balls on the large graphs dominate runtime
			}
			for _, radius := range radii {
				for _, mode := range []struct {
					name string
					opts QueryOptions
				}{
					{"plain", QueryOptions{Radius: radius}},
					{"plus", func() QueryOptions { o := PlusQuery(); o.Radius = radius; return o }()},
				} {
					want := mustMatch(t, e, q, mode.opts)
					p := plan.NewPlanner(plan.Config{})

					var tr1 obs.QueryStats
					miss := mustMatch(t, e, q, planned(mode.opts, p, &tr1))
					if !reflect.DeepEqual(want.Subgraphs, miss.Subgraphs) {
						t.Fatalf("n=%d alpha=%.1f r=%d %s: miss-path subgraphs differ", n, alpha, radius, mode.name)
					}
					if tr1.PlanCacheOutcome != plan.OutcomeMiss {
						t.Fatalf("first run outcome = %q", tr1.PlanCacheOutcome)
					}

					var tr2 obs.QueryStats
					hit := mustMatch(t, e, q, planned(mode.opts, p, &tr2))
					if !reflect.DeepEqual(want.Subgraphs, hit.Subgraphs) {
						t.Fatalf("n=%d alpha=%.1f r=%d %s: hit-path subgraphs differ", n, alpha, radius, mode.name)
					}
					if tr2.PlanCacheOutcome != plan.OutcomeHit {
						t.Fatalf("second run outcome = %q, want hit", tr2.PlanCacheOutcome)
					}
					if tr2.PlanCandidatesBefore != 0 {
						t.Fatalf("hit path ran the prefilter (before=%d)", tr2.PlanCandidatesBefore)
					}
				}
			}
		}
	}
}

// TestPlannerIsomorphicHit: an isomorphic pattern under a different node
// numbering must hit the same entry and come back renumbered for the new
// query, byte-identical to evaluating it directly.
func TestPlannerIsomorphicHit(t *testing.T) {
	labels := graph.NewLabels()
	g := graph.MustParse(`
node d0 A
node d1 B
node d2 C
node d3 A
node d4 B
node d5 C
node d6 B
edge d0 d1
edge d1 d2
edge d3 d4
edge d4 d5
edge d0 d6
edge d6 d2
`, labels)
	e := New(g, Config{Workers: 2})
	q1 := graph.MustParse("node a A\nnode b B\nnode c C\nedge a b\nedge b c", labels)
	q2 := graph.MustParse("node c C\nnode b B\nnode a A\nedge a b\nedge b c", labels)

	p := plan.NewPlanner(plan.Config{})
	mustMatch(t, e, q1, planned(QueryOptions{}, p, nil))

	want := mustMatch(t, e, q2, QueryOptions{})
	var tr obs.QueryStats
	got := mustMatch(t, e, q2, planned(QueryOptions{}, p, &tr))
	if tr.PlanCacheOutcome != plan.OutcomeHit {
		t.Fatalf("isomorphic query outcome = %q, want hit", tr.PlanCacheOutcome)
	}
	if !reflect.DeepEqual(want.Subgraphs, got.Subgraphs) {
		t.Fatalf("remapped hit differs from direct evaluation:\nwant %+v\ngot  %+v", want.Subgraphs, got.Subgraphs)
	}
}

// TestPlannerContainedParity: an exact-key miss whose pattern is contained
// in a cached one evaluates only inside the cached centers — and still
// answers byte-identically.
func TestPlannerContainedParity(t *testing.T) {
	labels := graph.NewLabels()
	// Several A->B sites, one of which also hosts the two-source shape, plus
	// label-matching noise that pruning and containment must not misjudge.
	g := graph.MustParse(`
node d0 A
node d1 B
node d2 A
node d3 A
node d4 B
node d5 A
node d6 B
node d7 C
edge d0 d1
edge d2 d1
edge d3 d4
edge d5 d6
edge d6 d7
edge d7 d5
`, labels)
	e := New(g, Config{Workers: 2})
	qBig := graph.MustParse("node a1 A\nnode b B\nnode a2 A\nedge a1 b\nedge a2 b", labels)
	qSmall := graph.MustParse("node a A\nnode b B\nedge a b", labels)

	for _, mode := range []struct {
		name string
		opts QueryOptions
	}{
		{"plain", QueryOptions{}},
		{"plus", PlusQuery()},
	} {
		p := plan.NewPlanner(plan.Config{})
		var trBig obs.QueryStats
		// Pin both executions to the same radius: containment requires the
		// cached radius to subsume the query's, and the two diameters differ.
		optsBig := mode.opts
		optsBig.Radius = 2
		mustMatch(t, e, qBig, planned(optsBig, p, &trBig))
		if trBig.PlanCacheOutcome != plan.OutcomeMiss {
			t.Fatalf("%s: warm run outcome = %q", mode.name, trBig.PlanCacheOutcome)
		}

		optsSmall := mode.opts
		optsSmall.Radius = 1
		want := mustMatch(t, e, qSmall, optsSmall)
		var tr obs.QueryStats
		got := mustMatch(t, e, qSmall, planned(optsSmall, p, &tr))
		if tr.PlanCacheOutcome != plan.OutcomeContained {
			t.Fatalf("%s: contained query outcome = %q", mode.name, tr.PlanCacheOutcome)
		}
		if !reflect.DeepEqual(want.Subgraphs, got.Subgraphs) {
			t.Fatalf("%s: contained-path subgraphs differ", mode.name)
		}
		if len(want.Subgraphs) == 0 {
			t.Fatalf("%s: degenerate test — the contained query found nothing", mode.name)
		}
	}
}

// TestPlannerRefreshParity drives the repair path the way a live store
// does: bump the snapshot version, invalidate with a dirty-center set, and
// require the refreshed answer to equal a from-scratch evaluation.
func TestPlannerRefreshParity(t *testing.T) {
	q, g := testWorkload(t, 300, 11)
	e := New(g, Config{Workers: 2})
	e.Snapshot().SetVersion(1)
	want := mustMatch(t, e, q, QueryOptions{})

	dirtySets := [][]int32{
		nil,                  // version gap, nothing dirty: pure retain
		{0, 1, 2, 3, 4, 150}, // partial repair
		func() []int32 { // a third of the graph: heavy repair, below the drop bound
			var many []int32
			for i := int32(0); i < int32(g.NumNodes()); i += 3 {
				many = append(many, i)
			}
			return many
		}(),
	}
	for i, dirty := range dirtySets {
		p := plan.NewPlanner(plan.Config{})
		e.Snapshot().SetVersion(1)
		mustMatch(t, e, q, planned(QueryOptions{}, p, nil))

		// The graph itself is unchanged — refresh parity is about the repair
		// machinery (retain + re-evaluate + merge) reproducing the answer,
		// whatever subset it is told to redo.
		p.Invalidate(2, func(radius int) []int32 { return dirty })
		e.Snapshot().SetVersion(2)

		var tr obs.QueryStats
		got := mustMatch(t, e, q, planned(QueryOptions{}, p, &tr))
		if tr.PlanCacheOutcome != plan.OutcomeRefresh {
			t.Fatalf("dirty set %d: outcome = %q, want refresh", i, tr.PlanCacheOutcome)
		}
		if !reflect.DeepEqual(want.Subgraphs, got.Subgraphs) {
			t.Fatalf("dirty set %d: refreshed subgraphs differ", i)
		}

		// The repaired entry is clean again: the next lookup is a hit.
		var tr2 obs.QueryStats
		got2 := mustMatch(t, e, q, planned(QueryOptions{}, p, &tr2))
		if tr2.PlanCacheOutcome != plan.OutcomeHit {
			t.Fatalf("dirty set %d: post-repair outcome = %q", i, tr2.PlanCacheOutcome)
		}
		if !reflect.DeepEqual(want.Subgraphs, got2.Subgraphs) {
			t.Fatalf("dirty set %d: post-repair subgraphs differ", i)
		}
	}

	// Dirtying more than half the graph makes repair pointless: the cache
	// drops the entry and the next planned query is an honest miss.
	p := plan.NewPlanner(plan.Config{})
	e.Snapshot().SetVersion(1)
	mustMatch(t, e, q, planned(QueryOptions{}, p, nil))
	all := make([]int32, g.NumNodes())
	for i := range all {
		all[i] = int32(i)
	}
	p.Invalidate(2, func(radius int) []int32 { return all })
	e.Snapshot().SetVersion(2)
	var tr obs.QueryStats
	got := mustMatch(t, e, q, planned(QueryOptions{}, p, &tr))
	if tr.PlanCacheOutcome != plan.OutcomeMiss {
		t.Fatalf("fully dirty entry outcome = %q, want miss (dropped)", tr.PlanCacheOutcome)
	}
	if !reflect.DeepEqual(want.Subgraphs, got.Subgraphs) {
		t.Fatal("post-drop subgraphs differ")
	}
}

// TestPlannerEmptyResultCached: Q ⊀D G short-circuits store an (empty)
// entry too — repeats must hit, not re-run the dual filter.
func TestPlannerEmptyResultCached(t *testing.T) {
	labels := graph.NewLabels()
	g := graph.MustParse("node d0 A\nnode d1 B\nedge d0 d1", labels)
	q := graph.MustParse("node a A\nnode b B\nnode c C\nedge a b\nedge b c", labels)
	e := New(g, Config{Workers: 1})

	p := plan.NewPlanner(plan.Config{})
	opts := PlusQuery() // dual filter proves Q ⊀D G before any ball
	first := mustMatch(t, e, q, planned(opts, p, nil))
	if len(first.Subgraphs) != 0 {
		t.Fatalf("expected no matches, got %d", len(first.Subgraphs))
	}
	var tr obs.QueryStats
	second := mustMatch(t, e, q, planned(opts, p, &tr))
	if tr.PlanCacheOutcome != plan.OutcomeHit {
		t.Fatalf("empty-result repeat outcome = %q", tr.PlanCacheOutcome)
	}
	if len(second.Subgraphs) != 0 {
		t.Fatalf("cached empty result grew %d subgraphs", len(second.Subgraphs))
	}
}

// TestPlannerAllocs bounds the planner's allocation overhead, in the style
// of the exec and graph scratch guards:
//
//   - hit path: O(result) — a cached answer must not allocate per ball or
//     per graph node, only the constant lookup machinery (canon, key,
//     result envelope).
//   - miss path: pruning plus store add O(pattern + result) on top of the
//     planner-off execution — nothing that scales with the evaluated balls.
func TestPlannerAllocs(t *testing.T) {
	q, g := testWorkload(t, 800, 7)
	e := New(g, Config{Workers: 1})
	ctx := context.Background()
	opts := QueryOptions{}

	run := func(o QueryOptions) *core.Result {
		res, err := e.Match(ctx, q, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Warm snapshot-level lazies (label index, prune index, ball arenas) so
	// they don't bill the measured runs.
	warmPlanner := plan.NewPlanner(plan.Config{})
	for i := 0; i < 50; i++ {
		run(opts)
		run(planned(opts, warmPlanner, nil))
	}

	base := testing.AllocsPerRun(100, func() { run(opts) })

	hitPlanner := plan.NewPlanner(plan.Config{})
	run(planned(opts, hitPlanner, nil))
	hit := testing.AllocsPerRun(100, func() { run(planned(opts, hitPlanner, nil)) })

	miss := testing.AllocsPerRun(100, func() {
		run(planned(opts, plan.NewPlanner(plan.Config{}), nil))
	})

	t.Logf("allocs/op: base=%.0f miss=%.0f hit=%.0f", base, miss, hit)
	// The planner-off run allocates per evaluated ball, so it dwarfs the
	// lookup constant; a hit that allocated per ball would blow this bound.
	if hit > 120 {
		t.Errorf("cache hit allocates %.0f/op, want O(result) (≤ 120)", hit)
	}
	if base > 100 && hit > base/4 {
		t.Errorf("cache hit allocates %.0f/op vs %.0f planner-off — not O(result)", hit, base)
	}
	// The miss path re-runs the full evaluation plus canon/store overhead.
	// The overhead is constant-ish in the ball count; pruning can only
	// remove per-ball allocations, so a generous constant catches any
	// per-ball regression.
	if miss > base+150 {
		t.Errorf("cache miss allocates %.0f/op vs %.0f planner-off — per-ball overhead crept in", miss, base)
	}
}
