package engine

import (
	"context"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
)

// BatchQuery is one pattern plus its options inside a batch.
type BatchQuery struct {
	Pattern *graph.Graph
	Opts    QueryOptions
}

// BatchResult is the outcome of one batch member: exactly one of Result and
// Err is set.
type BatchResult struct {
	Result *core.Result
	Err    error
}

// MatchBatch evaluates many patterns against the snapshot in one pass,
// amortizing the per-center work that single queries repeat: queries whose
// effective radius coincides are grouped, and each ball Ĝ[v, r] is
// constructed once per group and evaluated against every member pattern
// that considers v a viable center (on top of whatever the snapshot has
// cached for the radius). Per-query prefilters (minimization, the global
// dual-simulation relation, candidate centers) are computed concurrently up
// front. Each member's Result is identical to what Match would return for
// it alone; a member that fails validation gets its own Err without
// affecting the rest. When ctx ends mid-batch, members not yet finished
// report ctx's error.
func (e *Engine) MatchBatch(ctx context.Context, queries []BatchQuery) []BatchResult {
	results := make([]BatchResult, len(queries))
	preps := make([]*preparedQuery, len(queries))

	// Per-query precomputation (dominated by the global dual-simulation
	// filters) fans out across the worker budget on the exec pool.
	type prepOutcome struct {
		p   *preparedQuery
		err error
	}
	_ = exec.Run(ctx, exec.Options{Workers: e.workers}, len(queries),
		func(_ *exec.Scratch, i int) prepOutcome {
			p, err := e.prepare(ctx, queries[i].Pattern, queries[i].Opts)
			return prepOutcome{p: p, err: err}
		},
		func(i int, o prepOutcome) bool {
			if o.err != nil {
				results[i].Err = o.err
			} else {
				preps[i] = o.p
			}
			return true
		})

	// Group live queries by effective radius; the shared radius is what
	// makes one ball reusable across a group's patterns.
	groups := make(map[int][]int)
	for i, p := range preps {
		if p == nil || p.done {
			continue
		}
		groups[p.radius] = append(groups[p.radius], i)
	}
	radii := make([]int, 0, len(groups))
	for r := range groups {
		radii = append(radii, r)
	}
	sort.Ints(radii)
	for _, r := range radii {
		if ctx.Err() != nil {
			break
		}
		e.runGroup(ctx, r, groups[r], queries, preps, results)
	}

	for i, p := range preps {
		if results[i].Err != nil || results[i].Result != nil {
			continue
		}
		switch {
		case p != nil && p.done:
			// Dual filter answered the query during prepare: Q ⊀D G.
			results[i].Result = &core.Result{Stats: p.stats}
		case ctx.Err() != nil:
			results[i].Err = ctx.Err()
		}
	}
	return results
}

// runGroup evaluates all queries of one radius group over the union of
// their candidate centers, building each ball at most once.
func (e *Engine) runGroup(ctx context.Context, radius int, idxs []int, queries []BatchQuery, preps []*preparedQuery, results []BatchResult) {
	g := e.snap.g
	want := make([]*graph.NodeSet, len(idxs))
	union := graph.NewNodeSet(g.NumNodes())
	for k, i := range idxs {
		s := graph.NewNodeSet(g.NumNodes())
		for _, c := range preps[i].centers {
			s.Add(c)
		}
		want[k] = s
		union.UnionWith(s)
	}
	centers := union.Slice()

	// done[k] flips once query k hit its Limit; workers consult it to skip
	// useless evaluations, and the group cancels when every member is done.
	done := make([]atomic.Bool, len(idxs))
	limited := 0
	for _, i := range idxs {
		if queries[i].Opts.Limit > 0 {
			limited++
		}
	}

	type outcome struct {
		qpos   int // index into idxs
		center int32
		ps     *core.PerfectSubgraph
		stats  core.Stats
	}

	// One exec evaluation = one center: the ball is built (or fetched) at
	// most once and evaluated against every group member that wants it.
	evalCenter := func(s *exec.Scratch, pos int) []outcome {
		center := centers[pos]
		var ball *graph.Ball // built lazily, shared by the group's patterns
		var outs []outcome
		for k, i := range idxs {
			if !want[k].Contains(center) || done[k].Load() {
				continue
			}
			if ball == nil {
				ball = e.snap.BallIn(&s.Balls, center, radius)
			}
			ps, stats := core.EvalPreparedBallIn(preps[i].qEff, ball, center, queries[i].Opts.coreOptions(), preps[i].global, &s.Sim)
			outs = append(outs, outcome{qpos: k, center: center, ps: ps, stats: stats})
		}
		return outs
	}

	// Collector (the exec sink). Unlimited queries gather per candidate
	// center and dedup in center order afterwards, for parity with Match;
	// limited queries dedup on arrival and stop at their cap. Collection is
	// sized by each query's candidate count, never by |V|.
	type collect struct {
		res       *core.Result
		perCenter []*core.PerfectSubgraph
		posOf     map[int32]int // center -> index into perCenter
		dedup     *core.Deduper
	}
	colls := make([]*collect, len(idxs))
	for k, i := range idxs {
		c := &collect{res: &core.Result{Stats: preps[i].stats}}
		if queries[i].Opts.Limit > 0 {
			c.dedup = core.NewDeduper()
		} else {
			c.perCenter = make([]*core.PerfectSubgraph, len(preps[i].centers))
			c.posOf = make(map[int32]int, len(preps[i].centers))
			for pos, center := range preps[i].centers {
				c.posOf[center] = pos
			}
		}
		colls[k] = c
	}
	doneCount := 0
	_ = exec.Run(ctx, exec.Options{Workers: e.workers}, len(centers), evalCenter,
		func(pos int, outs []outcome) bool {
			for _, o := range outs {
				k := o.qpos
				c := colls[k]
				if done[k].Load() {
					continue
				}
				foldStats(&c.res.Stats, o.stats)
				if c.perCenter != nil {
					c.perCenter[c.posOf[o.center]] = o.ps
					continue
				}
				if !c.dedup.Admit(o.ps, &c.res.Stats) {
					continue
				}
				c.res.Subgraphs = append(c.res.Subgraphs, o.ps)
				if len(c.res.Subgraphs) >= queries[idxs[k]].Opts.Limit {
					done[k].Store(true)
					doneCount++
					if limited == len(idxs) && doneCount == len(idxs) {
						return false // every member satisfied; stop the group early
					}
				}
			}
			return true
		})
	finalize := func(k, i int) {
		c := colls[k]
		if c.perCenter != nil {
			c.res.Subgraphs = core.DedupSubgraphs(c.perCenter, &c.res.Stats)
		}
		core.SortSubgraphs(c.res.Subgraphs)
		if queries[i].Opts.MinimizeQuery {
			for _, ps := range c.res.Subgraphs {
				core.ExpandRelation(ps, queries[i].Pattern, preps[i].classOf)
			}
		}
		results[i].Result = c.res
	}
	if err := ctx.Err(); err != nil {
		// Members that already satisfied their Limit have a complete
		// (truncated) answer; only members still scanning report the error.
		for k, i := range idxs {
			if done[k].Load() {
				finalize(k, i)
			} else {
				results[i].Err = err
			}
		}
		return
	}
	for k, i := range idxs {
		finalize(k, i)
	}
}
