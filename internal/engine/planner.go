package engine

import (
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
)

// cacheCtx is the per-query cache plan of one planned Match: the key and
// version it will be stored under, and — depending on the lookup outcome —
// either a clean entry to serve directly (hit), the center restriction plus
// retained outcomes of a repair (refresh), or the center restriction of a
// containment hit. nil when the query cannot use the cache (no planner,
// cache disabled, Limit set, invalid pattern).
type cacheCtx struct {
	cache   *plan.Cache
	key     string
	perm    []int32 // query node -> canonical position
	radius  int
	version uint64
	outcome string

	// hit is set for a clean exact-key entry: serve by remapping, no
	// evaluation at all.
	hit *plan.Cached
	// restrict, when non-nil, limits ball evaluation to these centers
	// (ascending): the pending dirty centers of a refresh, or the cached
	// outcome centers of a containment hit. Non-nil but empty means
	// "evaluate nothing" (a refresh whose radius saw no dirty centers).
	restrict []int32
	// retainC/retainO are the still-valid outcomes carried over from the
	// stale entry of a refresh, ascending and disjoint from restrict.
	retainC []int32
	retainO []*core.PerfectSubgraph
}

// planLookup consults the planner's result cache for one Match execution.
// Pattern validation failures return nil so the normal path reports its
// usual errors; the caller must already have routed Limit > 0 elsewhere.
func (e *Engine) planLookup(q *graph.Graph, opts QueryOptions) *cacheCtx {
	c := opts.Planner.Cache()
	if c == nil || q == nil || q.NumNodes() == 0 {
		return nil
	}
	dq, connected := graph.Diameter(q)
	if !connected {
		return nil
	}
	radius := opts.Radius
	if radius <= 0 {
		radius = dq
	}
	canon, perm := plan.Canon(q)
	mode := 0
	if opts.MinimizeQuery {
		mode |= 1
	}
	if opts.DualFilter {
		mode |= 2
	}
	if opts.ConnectivityPruning {
		mode |= 4
	}
	cc := &cacheCtx{
		cache:   c,
		key:     plan.CacheKey(canon, radius, mode),
		perm:    perm,
		radius:  radius,
		version: e.snap.Version(),
	}
	cached, outcome := c.Get(cc.key, cc.version)
	cc.outcome = outcome
	switch outcome {
	case plan.OutcomeHit:
		cc.hit = cached
	case plan.OutcomeRefresh:
		cc.restrict = cached.Pending
		if cc.restrict == nil {
			// The entry predates this version but no update touched its
			// radius: nothing to re-evaluate, everything to retain.
			cc.restrict = []int32{}
		}
		mapTo, identity := cc.mapTo(cached)
		cc.retainC, cc.retainO = retainOutcomes(cached, mapTo, identity)
	default:
		// Exact key missed; a cached superset query may still bound the
		// evaluation. Containment works across modes: the per-center match
		// outcome is mode-independent (Match+ is result-preserving ball by
		// ball), so any clean entry's center set is a valid superset.
		if cs := c.FindContaining(q, radius, cc.version); cs != nil {
			cc.outcome = plan.OutcomeContained
			cc.restrict = cs.Centers
		} else {
			c.NoteMiss()
		}
	}
	if tr := opts.Trace; tr != nil {
		tr.PlanCacheOutcome = cc.outcome
	}
	return cc
}

// mapTo composes the query's canonical perm with the cached entry's
// inverse: mapTo[u] is the cached-pattern node playing query node u's
// role. identity reports the common case of equal numbering, where cached
// subgraphs can be shared without copying.
func (cc *cacheCtx) mapTo(c *plan.Cached) ([]int32, bool) {
	m := make([]int32, len(cc.perm))
	identity := true
	for u := range m {
		m[u] = c.InvPerm[cc.perm[u]]
		if m[u] != int32(u) {
			identity = false
		}
	}
	return m, identity
}

// serveHit answers a clean cache hit in O(result): shared subgraphs when
// the query's numbering equals the cached pattern's, otherwise one fresh
// PerfectSubgraph per match with the relation keys translated (node and
// edge slices are always shared — they are data-side and read-only).
func (e *Engine) serveHit(cc *cacheCtx, tr *obs.QueryStats) *core.Result {
	tr.EnterStage(obs.StageMerge) // nil-safe
	sp := tr.StartSpan("plan.hit")
	start := time.Now()
	hit := cc.hit
	mapTo, identity := cc.mapTo(hit)
	res := &core.Result{Stats: hit.Result.Stats}
	if identity {
		res.Subgraphs = hit.Result.Subgraphs
	} else {
		res.Subgraphs = make([]*core.PerfectSubgraph, 0, len(hit.Result.Subgraphs))
		for _, ps := range hit.Result.Subgraphs {
			res.Subgraphs = append(res.Subgraphs, remapSubgraph(ps, mapTo))
		}
	}
	if tr != nil {
		tr.Merge = time.Since(start)
	}
	if sp.Recording() {
		sp.End(obs.Attr{Key: "matches", Value: int64(len(res.Subgraphs))})
	}
	return res
}

// remapSubgraph translates a cached subgraph's relation to the query's
// pattern numbering. Center, node and edge data are shared; only the Rel
// map is rebuilt.
func remapSubgraph(ps *core.PerfectSubgraph, mapTo []int32) *core.PerfectSubgraph {
	rel := make(map[int32][]int32, len(mapTo))
	for u, cu := range mapTo {
		if m, ok := ps.Rel[cu]; ok {
			rel[int32(u)] = m
		}
	}
	return &core.PerfectSubgraph{Center: ps.Center, Nodes: ps.Nodes, Edges: ps.Edges, Rel: rel}
}

// retainOutcomes filters a stale entry's outcomes down to centers not in
// its pending set — outcomes provably unchanged by the updates since the
// entry's version (an unmarked center's ball is identical in both graphs)
// — remapping relations to the current query's numbering when it differs.
func retainOutcomes(c *plan.Cached, mapTo []int32, identity bool) ([]int32, []*core.PerfectSubgraph) {
	centers := make([]int32, 0, len(c.Centers))
	outs := make([]*core.PerfectSubgraph, 0, len(c.Centers))
	j := 0
	for i, ctr := range c.Centers {
		for j < len(c.Pending) && c.Pending[j] < ctr {
			j++
		}
		if j < len(c.Pending) && c.Pending[j] == ctr {
			continue // stale; re-evaluation decides its fate
		}
		ps := c.Outcomes[i]
		if !identity {
			ps = remapSubgraph(ps, mapTo)
		}
		centers = append(centers, ctr)
		outs = append(outs, ps)
	}
	return centers, outs
}

// merge interleaves retained outcomes with freshly evaluated ones into
// ascending-center arrays (nil evaluation slots dropped). The two sources
// are disjoint: retained centers were excluded from restrict.
func (cc *cacheCtx) merge(centers []int32, out []*core.PerfectSubgraph) ([]int32, []*core.PerfectSubgraph) {
	n := len(cc.retainC)
	for _, ps := range out {
		if ps != nil {
			n++
		}
	}
	mc := make([]int32, 0, n)
	mo := make([]*core.PerfectSubgraph, 0, n)
	i := 0
	for j, ps := range out {
		if ps == nil {
			continue
		}
		for i < len(cc.retainC) && cc.retainC[i] < centers[j] {
			mc = append(mc, cc.retainC[i])
			mo = append(mo, cc.retainO[i])
			i++
		}
		mc = append(mc, centers[j])
		mo = append(mo, ps)
	}
	for ; i < len(cc.retainC); i++ {
		mc = append(mc, cc.retainC[i])
		mo = append(mo, cc.retainO[i])
	}
	return mc, mo
}

// store caches a completed execution under the query's key. Nil-safe so
// Match can call it unconditionally on planned paths.
func (cc *cacheCtx) store(e *Engine, q *graph.Graph,
	centers []int32, outcomes []*core.PerfectSubgraph, res *core.Result) {
	if cc == nil {
		return
	}
	inv := make([]int32, len(cc.perm))
	for u, p := range cc.perm {
		inv[p] = int32(u)
	}
	cc.cache.Put(cc.key, q, inv, cc.radius, cc.version,
		e.snap.g.NumNodes(), centers, outcomes, res)
}

// intersectSorted keeps the elements of a (ascending) also present in b
// (ascending), in place.
func intersectSorted(a, b []int32) []int32 {
	w, j := 0, 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			a[w] = x
			w++
		}
	}
	return a[:w]
}
