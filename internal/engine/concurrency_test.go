package engine

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/graph"
)

// TestConcurrentQueriesSharedSnapshot hammers one shared Snapshot (with a
// warm ball cache) from many goroutines running a mix of query shapes, and
// checks every answer against the sequentially precomputed expectation.
// This is the test the ISSUE requires to be -race clean.
func TestConcurrentQueriesSharedSnapshot(t *testing.T) {
	g := generator.Synthetic(400, 1.2, 10, 47)
	type job struct {
		q    *graph.Graph
		opts QueryOptions
		want *core.Result
	}
	var jobs []job
	for seed := int64(0); seed < 6; seed++ {
		q := generator.SamplePattern(g, generator.PatternOptions{Nodes: 3 + int(seed%3), Alpha: 1.2, Seed: seed})
		for _, opts := range []QueryOptions{{}, PlusQuery()} {
			want, err := core.MatchWith(q, g, opts.coreOptions())
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job{q: q, opts: opts, want: want})
		}
	}

	snap := NewSnapshot(g)
	e := NewWithSnapshot(snap, Config{Workers: 4})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				j := jobs[(worker+rep*5)%len(jobs)]
				got, err := e.Match(context.Background(), j.q, j.opts)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, j.want) {
					t.Errorf("concurrent query diverged: %d vs %d subgraphs", got.Len(), j.want.Len())
				}
			}
		}(worker)
	}
	// Concurrently warm and drop ball caches and parse patterns, to race the
	// snapshot's mutable corners against live queries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for rep := 0; rep < 3; rep++ {
			snap.PrepareBalls(2)
			snap.PreparedRadii()
			if _, err := snap.ParsePattern("node a l0\nnode b fresh-label-xyz\nedge a b\n"); err != nil {
				errs <- err
				return
			}
			snap.DropBalls(2)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPrepareDropRaceAgainstMatch hammers Snapshot.PrepareBalls and
// DropBalls at exactly the radius in-flight queries use, so every Match
// keeps flipping between the cached-ball path (shared long-lived balls) and
// the scratch path (per-worker arenas) mid-query. Results must stay
// byte-identical to the sequential expectation throughout, and the run must
// be clean under -race (the CI test step runs with -race; this is the PR 5
// satellite test for snapshot/scratch interplay).
func TestPrepareDropRaceAgainstMatch(t *testing.T) {
	g := generator.Synthetic(600, 1.2, 10, 23)
	q := generator.SamplePattern(g, generator.PatternOptions{Nodes: 4, Alpha: 1.2, Seed: 3})
	dq, connected := graph.Diameter(q)
	if !connected {
		t.Fatal("sampled pattern disconnected")
	}
	want, err := core.MatchWith(q, g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	snap := NewSnapshot(g)
	e := NewWithSnapshot(snap, Config{Workers: 4})
	stop := make(chan struct{})
	var churn sync.WaitGroup
	for c := 0; c < 2; c++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap.PrepareBalls(dq)
				snap.DropBalls(dq)
			}
		}()
	}

	var queries sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		queries.Add(1)
		go func() {
			defer queries.Done()
			for rep := 0; rep < 4; rep++ {
				got, err := e.Match(context.Background(), q, QueryOptions{})
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs <- fmt.Errorf("match under cache churn diverged: %d vs %d subgraphs", got.Len(), want.Len())
					return
				}
			}
		}()
	}
	queries.Wait()
	close(stop)
	churn.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCancellationBeforeStart checks an already-cancelled context aborts the
// query with its error.
func TestCancellationBeforeStart(t *testing.T) {
	q, g := testWorkload(t, 2000, 53)
	e := New(g, Config{Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Match(ctx, q, QueryOptions{}); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestCancellationMidStream cancels a streaming query after the first match
// and checks the stream terminates promptly with the context's error.
func TestCancellationMidStream(t *testing.T) {
	q, g := testWorkload(t, 4000, 59)
	e := New(g, Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := e.Stream(ctx, q, QueryOptions{})
	got := 0
	for range s.C {
		got++
		cancel()
	}
	stats, err := s.Wait()
	if got > 0 {
		// The producer observed the cancellation; it must have stopped well
		// short of the full scan and reported the context error.
		if err != context.Canceled {
			t.Fatalf("got err %v, want context.Canceled", err)
		}
		if stats.BallsExamined+stats.BallsSkipped >= g.NumNodes() {
			t.Fatalf("cancellation did not stop the scan: examined %d + skipped %d of %d nodes",
				stats.BallsExamined, stats.BallsSkipped, g.NumNodes())
		}
	}
}

// TestDeadlineExpires checks a deadline aborts a long query with
// DeadlineExceeded — the per-request behavior the HTTP server relies on.
func TestDeadlineExpires(t *testing.T) {
	q, g := testWorkload(t, 6000, 61)
	e := New(g, Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	if _, err := e.Match(ctx, q, QueryOptions{}); err != context.DeadlineExceeded {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// TestLimitEarlyExit checks that Limit stops the query after the requested
// number of subgraphs and cancels the remaining ball evaluations, on a
// workload with far more viable centers than the limit.
func TestLimitEarlyExit(t *testing.T) {
	g := generator.Synthetic(5000, 1.2, 5, 67)
	// A 2-node pattern taken from an actual edge: with only 5 labels, a
	// large fraction of centers is viable and many balls produce a match.
	u := int32(-1)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		if g.OutDegree(v) > 0 {
			u = v
			break
		}
	}
	if u < 0 {
		t.Fatal("generated graph has no edges")
	}
	b := graph.NewBuilder(g.Labels())
	pu := b.AddNode(g.LabelName(u))
	pv := b.AddNode(g.LabelName(g.Out(u)[0]))
	_ = b.AddEdge(pu, pv)
	q := b.Build()

	e := New(g, Config{Workers: 4})
	full := mustMatch(t, e, q, QueryOptions{})
	if full.Len() < 50 {
		t.Fatalf("workload produced only %d matches; early exit not observable", full.Len())
	}

	limited := mustMatch(t, e, q, QueryOptions{Limit: 2})
	if limited.Len() != 2 {
		t.Fatalf("Limit=2 returned %d subgraphs", limited.Len())
	}
	if limited.Stats.BallsExamined >= full.Stats.BallsExamined/2 {
		t.Errorf("early exit examined %d balls; full query examined %d",
			limited.Stats.BallsExamined, full.Stats.BallsExamined)
	}
	// Every limited subgraph must be a genuine member of the full answer.
	want := make(map[string]bool, full.Len())
	for _, ps := range full.Subgraphs {
		want[ps.Signature()] = true
	}
	for _, ps := range limited.Subgraphs {
		if !want[ps.Signature()] {
			t.Error("limited query returned a subgraph the full query does not contain")
		}
	}
}

// TestLimitViaTopK pairs Limit with MatchTopK: the ranking sees only the
// subgraphs found before the early exit.
func TestLimitViaTopK(t *testing.T) {
	q, g := testWorkload(t, 500, 71)
	e := New(g, Config{Workers: 4})
	ranked, _, err := e.MatchTopK(context.Background(), q, 5, nil, QueryOptions{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) > 3 {
		t.Fatalf("Limit=3 but ranking saw %d subgraphs", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i-1].Score < ranked[i].Score {
			t.Error("ranking not sorted best-first")
		}
	}
}
