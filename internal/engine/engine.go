// Package engine is the serving layer over the paper's Match algorithm: a
// concurrent strong-simulation query engine. It wraps an immutable data
// graph as a prepared Snapshot (frozen label table, candidate centers per
// pattern label, optional cached balls for hot radii) and evaluates queries
// by fanning per-ball work — the embarrassingly parallel loop of Fig. 3 —
// across a worker pool, with context cancellation, early termination, result
// streaming and a batch API that amortizes ball construction across patterns
// of equal effective radius. The per-ball evaluation itself is
// core.EvalPreparedBallWith, so the engine returns exactly the perfect
// subgraphs of core.MatchWith under the same options.
//
// See DESIGN.md for the architecture and cmd/strongsimd for the HTTP server
// built on top.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/simulation"
)

// Config configures an Engine.
type Config struct {
	// Workers is the number of goroutines evaluating balls per query;
	// 0 uses GOMAXPROCS.
	Workers int
	// PrepareRadii lists ball radii to precompute eagerly at construction
	// (see Snapshot.PrepareBalls for the memory trade-off).
	PrepareRadii []int
}

// Engine executes strong-simulation queries against one Snapshot. It is safe
// for concurrent use; all per-query state lives on the goroutines of that
// query.
type Engine struct {
	snap    *Snapshot
	workers int
}

// New prepares g and returns an engine over it.
func New(g *graph.Graph, cfg Config) *Engine {
	return NewWithSnapshot(NewSnapshot(g), cfg)
}

// NewWithSnapshot returns an engine over an existing snapshot, so several
// engines (e.g. with different worker budgets) can share prepared state.
func NewWithSnapshot(snap *Snapshot, cfg Config) *Engine {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	for _, r := range cfg.PrepareRadii {
		snap.PrepareBalls(r)
	}
	return &Engine{snap: snap, workers: w}
}

// Snapshot returns the engine's prepared snapshot.
func (e *Engine) Snapshot() *Snapshot { return e.snap }

// Workers returns the per-query worker count.
func (e *Engine) Workers() int { return e.workers }

// QueryOptions configure one query. The zero value is the paper's plain
// Match; PlusQuery enables every Match+ optimization.
type QueryOptions struct {
	// Radius overrides the ball radius; 0 uses the pattern diameter dQ.
	Radius int
	// MinimizeQuery runs minQ (Fig. 4) first, keeping the original
	// diameter as the radius.
	MinimizeQuery bool
	// DualFilter computes dual simulation once on the whole data graph,
	// skips centers it leaves unmatched, and refines balls from their
	// border only (Fig. 5).
	DualFilter bool
	// ConnectivityPruning drops ball candidates not connected to the
	// center through candidates (Section 4.2).
	ConnectivityPruning bool
	// Limit stops the query after this many distinct perfect subgraphs
	// and cancels outstanding ball work; 0 returns all matches. Which
	// subgraphs are returned under a limit depends on worker scheduling.
	Limit int
	// Trace, when non-nil, receives the per-stage statistics of this query:
	// stage wall times, candidate-center counts and evaluated ball sizes.
	// Tracing never changes results, and a nil Trace adds no per-ball
	// allocations. The pointed-to struct must not be shared across
	// concurrent queries; read it only after the query has finished (after
	// Match returns, or after Stream.Wait).
	Trace *obs.QueryStats
	// Planner, when non-nil, enables query planning: candidate-center
	// pruning against the snapshot's signature/degree indexes on every
	// execution path, and — for unlimited Match — the match-result cache.
	// Planning never changes the served subgraphs; only stats accounting
	// (the BallsSkipped/BallsExamined split) reflects the pruned work. The
	// zero value keeps the historical execution byte for byte.
	Planner *plan.Planner
}

// PlusQuery returns the Match+ configuration: every optimization enabled.
func PlusQuery() QueryOptions {
	return QueryOptions{MinimizeQuery: true, DualFilter: true, ConnectivityPruning: true}
}

func (o QueryOptions) coreOptions() core.Options {
	return core.Options{
		Radius:              o.Radius,
		MinimizeQuery:       o.MinimizeQuery,
		DualFilter:          o.DualFilter,
		ConnectivityPruning: o.ConnectivityPruning,
	}
}

// preparedQuery is the per-query state shared by every execution mode.
type preparedQuery struct {
	qEff    *graph.Graph // pattern actually matched (minimized or original)
	classOf []int32      // original pattern node -> qEff node (minimization only)
	radius  int
	global  simulation.Relation // dual-filter relation, nil when disabled
	centers []int32             // viable ball centers, ascending
	stats   core.Stats          // prefilter accounting (skipped centers, minQ size)
	done    bool                // query already answered (dual filter found Q ⊀D G)
}

// prepare validates the pattern and runs the per-query precomputation:
// minimization, the global dual-simulation filter, and center candidate
// selection against the snapshot's label index. A dead ctx is observed
// between the phases (the full-graph dual simulation itself is not
// interruptible), so cancelled requests shed their heaviest precomputation
// instead of running it to completion.
func (e *Engine) prepare(ctx context.Context, q *graph.Graph, opts QueryOptions) (*preparedQuery, error) {
	tr := opts.Trace
	tr.EnterStage(obs.StagePrepare) // nil-safe
	sp := tr.StartSpan("prepare")   // zero Span when the query is untraced
	start := time.Now()
	if q == nil || q.NumNodes() == 0 {
		sp.EndStatus("error")
		return nil, fmt.Errorf("engine: empty pattern graph")
	}
	dq, connected := graph.Diameter(q)
	if !connected {
		sp.EndStatus("error")
		return nil, fmt.Errorf("engine: pattern graph must be connected (Section 2.1)")
	}
	p := &preparedQuery{qEff: q, radius: opts.Radius}
	if p.radius <= 0 {
		p.radius = dq
	}
	if opts.MinimizeQuery {
		p.stats.MinimizedFrom = q.Size()
		p.qEff, p.classOf = core.MinimizeQuery(q)
	}
	if err := ctx.Err(); err != nil {
		sp.EndStatus("cancelled")
		return nil, err
	}
	if tr != nil {
		tr.Prepare = time.Since(start)
		start = time.Now()
	}
	sp.End()
	sp = tr.StartSpan("filter")
	tr.EnterStage(obs.StageFilter)

	g := e.snap.g
	var centerSet *graph.NodeSet
	if opts.DualFilter {
		rel, ok := simulation.Dual(p.qEff, g)
		if !ok {
			// Q ⊀D G: no ball can match (Proposition 1).
			p.stats.BallsSkipped = g.NumNodes()
			p.done = true
			if tr != nil {
				tr.Filter = time.Since(start)
			}
			sp.End()
			return p, nil
		}
		p.global = rel
		centerSet = rel.DataNodes(g.NumNodes())
	} else {
		centerSet = e.snap.CandidateCenters(p.qEff)
	}
	if err := ctx.Err(); err != nil {
		sp.EndStatus("cancelled")
		return nil, err
	}
	p.centers = centerSet.Slice()
	if opts.Planner != nil && len(p.centers) > 0 {
		// Candidate pruning: every filter is a necessary condition for a
		// ball match, so dropped centers could not have contributed a
		// subgraph; they surface as skipped balls in the stats.
		var pst plan.PruneStats
		p.centers = e.snap.PruneIndex().Prune(p.qEff, p.radius, p.centers, &pst)
		plan.CountPruned(pst)
		if tr != nil {
			tr.PlanCandidatesBefore = pst.Before
			tr.PlanPrunedSignature = pst.PrunedSignature
			tr.PlanPrunedDegree = pst.PrunedDegree
		}
	}
	p.stats.BallsSkipped = g.NumNodes() - len(p.centers)
	if tr != nil {
		tr.Filter = time.Since(start)
		tr.CandidateCenters = len(p.centers)
	}
	if sp.Recording() {
		sp.End(obs.Attr{Key: "candidate_centers", Value: int64(len(p.centers))})
	}
	return p, nil
}

// ballOutcome is one evaluated ball, tagged with its center's position in
// the prepared center list (which is ascending, so position order is center
// order).
type ballOutcome struct {
	pos   int
	ps    *core.PerfectSubgraph
	stats core.Stats
	// ballNodes/ballEdges record the evaluated ball's size for query
	// tracing; plain ints in the outcome struct, so the stats-off path pays
	// two register stores per ball and no allocation.
	ballNodes int
	ballEdges int
}

// evalCenters fans ball evaluation over the internal/exec pool and feeds
// every outcome to sink on the calling goroutine. sink returning false
// cancels the remaining work (outcomes already in flight are discarded
// without reaching sink, so early exits undercount stats by design). Returns
// ctx's error when the context ends the run — even when the sink stopped it
// first (a stream consumer aborting on ctx.Done stops via the sink; its
// callers must still see the context error) — and nil for a sink stop with a
// live context, the Limit early exit. Cancellation is observed between
// balls; a ball evaluation already underway runs to completion.
// span, when recording, becomes the parent of the pool's per-worker
// "eval.worker" spans; a zero span adds nothing.
func (e *Engine) evalCenters(ctx context.Context, p *preparedQuery, coreOpts core.Options, progress *obs.Progress, span obs.Span, sink func(ballOutcome) bool) error {
	return exec.Run(ctx, exec.Options{Workers: e.workers, Progress: progress, Span: span}, len(p.centers),
		func(s *exec.Scratch, pos int) ballOutcome {
			center := p.centers[pos]
			ball := e.snap.BallIn(&s.Balls, center, p.radius)
			ps, stats := core.EvalPreparedBallIn(p.qEff, ball, center, coreOpts, p.global, &s.Sim)
			return ballOutcome{pos: pos, ps: ps, stats: stats,
				ballNodes: ball.G.NumNodes(), ballEdges: ball.G.NumEdges()}
		},
		func(pos int, o ballOutcome) bool { return sink(o) })
}

// EvalCenters evaluates the plain-Match ball outcome for each listed center
// on the engine's worker pool: the ball Ĝ[c, radius] is fetched from the
// snapshot (cached or fresh) and run through core.EvalPreparedBallWith with
// zero options and no global relation — exactly the per-center work of a
// plain Match restricted to the given centers. report is called on the
// calling goroutine with the center's index in centers and its maximum
// perfect subgraph (nil when the ball has none), in worker completion order.
// radius <= 0 uses the pattern diameter. Callers are responsible for any
// center prefiltering (label precheck); every listed center is evaluated.
//
// internal/live uses this to re-evaluate the dirty centers of a standing
// query after an update batch; the outcomes are interchangeable with those
// Match computed for the same centers.
// trace, when non-nil, records the evaluation like a traced Match would
// (candidate centers, per-ball sizes, eval wall time, live stage/progress);
// nil adds no per-ball work.
func (e *Engine) EvalCenters(ctx context.Context, q *graph.Graph, radius int, centers []int32, trace *obs.QueryStats, report func(i int, ps *core.PerfectSubgraph)) error {
	if q == nil || q.NumNodes() == 0 {
		return fmt.Errorf("engine: empty pattern graph")
	}
	if radius <= 0 {
		dq, connected := graph.Diameter(q)
		if !connected {
			return fmt.Errorf("engine: pattern graph must be connected (Section 2.1)")
		}
		radius = dq
	}
	p := &preparedQuery{qEff: q, radius: radius, centers: centers}
	trace.EnterStage(obs.StageEval) // nil-safe
	sp := trace.StartSpan("eval")
	var evalStart time.Time
	if trace != nil {
		trace.CandidateCenters = len(centers)
		evalStart = time.Now()
	}
	err := e.evalCenters(ctx, p, core.Options{}, trace.Live(), sp, func(o ballOutcome) bool {
		trace.ObserveBall(o.ballNodes, o.ballEdges) // nil-safe
		report(o.pos, o.ps)
		return true
	})
	if trace != nil {
		trace.Eval += time.Since(evalStart)
	}
	endEvalSpan(sp, trace, err)
	return err
}

// endEvalSpan completes one eval-stage span with the balls-evaluated count
// and the run's outcome. The guard keeps the untraced path attr-free.
func endEvalSpan(sp obs.Span, tr *obs.QueryStats, err error) {
	if !sp.Recording() {
		return
	}
	status := ""
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		status = "deadline"
	case errors.Is(err, context.Canceled):
		status = "cancelled"
	default:
		status = "error"
	}
	sp.EndStatus(status, obs.Attr{Key: "balls", Value: int64(tr.BallsBuilt)})
}

func foldStats(dst *core.Stats, src core.Stats) {
	dst.BallsExamined += src.BallsExamined
	dst.BallsSkipped += src.BallsSkipped
	dst.PairsRemoved += src.PairsRemoved
}

// Match runs one query to completion and returns the full canonical result —
// byte-for-byte the Result that core.MatchWith produces for the same pattern
// and options (same subgraphs, same dedup tie-breaking toward the smallest
// center, same ordering, same stats), just evaluated against the snapshot
// with this engine's worker pool. It honors ctx: when the context is
// cancelled or its deadline passes mid-run, Match returns ctx's error.
func (e *Engine) Match(ctx context.Context, q *graph.Graph, opts QueryOptions) (*core.Result, error) {
	if opts.Limit > 0 {
		return e.matchLimited(ctx, q, opts)
	}
	cc := e.planLookup(q, opts) // nil when the query cannot use the cache
	if cc != nil && cc.hit != nil {
		return e.serveHit(cc, opts.Trace), nil
	}
	p, err := e.prepare(ctx, q, opts)
	if err != nil {
		return nil, err
	}
	res := &core.Result{Stats: p.stats}
	if p.done {
		// Q ⊀D G has no matches at any center; the empty entry still
		// serves exact repeats and bounds contained queries to nothing.
		cc.store(e, q, nil, nil, res)
		return res, nil
	}
	if cc != nil && cc.restrict != nil {
		// Refresh or containment hit: only the listed centers can (still)
		// produce a new outcome; everything else is either retained from
		// the cached entry or provably unmatched.
		kept := intersectSorted(p.centers, cc.restrict)
		res.Stats.BallsSkipped += len(p.centers) - len(kept)
		p.centers = kept
	}

	// Collect per center, then dedup in center order so duplicate subgraphs
	// keep the smallest producing center, exactly as core.MatchWith does.
	// Sized by candidate count, not |V|: per-query memory must not scale
	// with graph size when the prefilter leaves few viable centers.
	out := make([]*core.PerfectSubgraph, len(p.centers))
	tr := opts.Trace
	tr.EnterStage(obs.StageEval)
	evalSp := tr.StartSpan("eval")
	evalStart := time.Now()
	err = e.evalCenters(ctx, p, opts.coreOptions(), tr.Live(), evalSp, func(o ballOutcome) bool {
		foldStats(&res.Stats, o.stats)
		tr.ObserveBall(o.ballNodes, o.ballEdges) // nil-safe
		out[o.pos] = o.ps
		return true
	})
	endEvalSpan(evalSp, tr, err)
	if err != nil {
		return nil, err
	}
	mergeStart := time.Now()
	if tr != nil {
		tr.Eval = mergeStart.Sub(evalStart)
	}
	tr.EnterStage(obs.StageMerge)
	mergeSp := tr.StartSpan("merge")

	if cc == nil {
		res.Subgraphs = core.DedupSubgraphs(out, &res.Stats)
		core.SortSubgraphs(res.Subgraphs)
		if opts.MinimizeQuery {
			for _, ps := range res.Subgraphs {
				core.ExpandRelation(ps, q, p.classOf)
			}
		}
	} else {
		// Cached path: the cache stores pre-dedup per-center outcomes —
		// later repairs can promote a duplicate to a survivor — so every
		// outcome is expanded before assembly, not just the survivors.
		// Dedup and ordering read only (Nodes, Edges), never the relation,
		// so the served subgraphs are byte-identical either way.
		if opts.MinimizeQuery {
			for _, ps := range out {
				if ps != nil {
					core.ExpandRelation(ps, q, p.classOf)
				}
			}
		}
		centers, outcomes := cc.merge(p.centers, out)
		res.Subgraphs = core.DedupSubgraphs(outcomes, &res.Stats)
		core.SortSubgraphs(res.Subgraphs)
		cc.store(e, q, centers, outcomes, res)
	}
	if tr != nil {
		tr.Merge = time.Since(mergeStart)
	}
	if mergeSp.Recording() {
		mergeSp.End(obs.Attr{Key: "matches", Value: int64(len(res.Subgraphs))})
	}
	return res, nil
}

// matchLimited collects up to opts.Limit subgraphs via the streaming path,
// cancelling outstanding balls once the limit is reached.
func (e *Engine) matchLimited(ctx context.Context, q *graph.Graph, opts QueryOptions) (*core.Result, error) {
	res := &core.Result{}
	stats, err := e.run(ctx, q, opts, func(ps *core.PerfectSubgraph) bool {
		res.Subgraphs = append(res.Subgraphs, ps)
		return true
	})
	if err != nil {
		return nil, err
	}
	res.Stats = stats
	opts.Trace.EnterStage(obs.StageMerge)
	mergeSp := opts.Trace.StartSpan("merge")
	mergeStart := time.Now()
	core.SortSubgraphs(res.Subgraphs)
	if tr := opts.Trace; tr != nil {
		tr.Merge = time.Since(mergeStart)
	}
	mergeSp.End()
	return res, nil
}

// run is the streaming execution: incremental dedup (first arrival wins),
// per-subgraph relation expansion, and limit enforcement. emit returning
// false stops the query without error.
func (e *Engine) run(ctx context.Context, q *graph.Graph, opts QueryOptions, emit func(*core.PerfectSubgraph) bool) (core.Stats, error) {
	p, err := e.prepare(ctx, q, opts)
	if err != nil {
		return core.Stats{}, err
	}
	stats := p.stats
	if p.done {
		return stats, nil
	}

	tr := opts.Trace
	tr.EnterStage(obs.StageEval)
	evalSp := tr.StartSpan("eval")
	evalStart := time.Now()
	dedup := core.NewDeduper()
	emitted := 0
	err = e.evalCenters(ctx, p, opts.coreOptions(), tr.Live(), evalSp, func(o ballOutcome) bool {
		foldStats(&stats, o.stats)
		tr.ObserveBall(o.ballNodes, o.ballEdges) // nil-safe
		if !dedup.Admit(o.ps, &stats) {
			return true
		}
		if opts.MinimizeQuery {
			core.ExpandRelation(o.ps, q, p.classOf)
		}
		if !emit(o.ps) {
			return false
		}
		emitted++
		return opts.Limit <= 0 || emitted < opts.Limit
	})
	if tr != nil {
		// Streaming dedups and expands inside the sink, so for run-based
		// executions the whole post-prepare phase is the eval stage.
		tr.Eval = time.Since(evalStart)
	}
	endEvalSpan(evalSp, tr, err)
	return stats, err
}

// Stream is a handle to an in-flight streaming query: range over C until it
// closes, then call Wait for the run's statistics and error. Matches arrive
// deduplicated, in worker completion order (nondeterministic). Abandoning C
// without cancelling the query's context leaks the query's goroutines until
// the context ends; cancel the context to stop early.
type Stream struct {
	C     <-chan *core.PerfectSubgraph
	done  chan struct{}
	stats core.Stats
	err   error
}

// Wait blocks until the query has finished and returns its statistics and
// error. C is closed by the time Wait returns.
func (s *Stream) Wait() (core.Stats, error) {
	<-s.done
	return s.stats, s.err
}

// Stream starts a query and returns immediately; matches are delivered on
// the stream's channel as balls complete. Pattern validation errors are
// reported through Wait.
func (e *Engine) Stream(ctx context.Context, q *graph.Graph, opts QueryOptions) *Stream {
	out := make(chan *core.PerfectSubgraph, e.workers)
	s := &Stream{C: out, done: make(chan struct{})}
	go func() {
		defer close(out)
		defer close(s.done)
		s.stats, s.err = e.run(ctx, q, opts, func(ps *core.PerfectSubgraph) bool {
			select {
			case out <- ps:
				return true
			case <-ctx.Done():
				return false
			}
		})
	}()
	return s
}

// MatchTopK runs a query keeping only the k best matches under the metric
// (nil = core.DefaultMetric), with the ordering of Result.TopK: score
// descending, then fewer nodes, then canonical signature. Memory stays
// O(k) regardless of how many subgraphs the query produces; the query
// itself still evaluates every viable ball unless opts.Limit also applies.
// k <= 0 ranks every match.
func (e *Engine) MatchTopK(ctx context.Context, q *graph.Graph, k int, metric core.Metric, opts QueryOptions) ([]core.Ranked, core.Stats, error) {
	if metric == nil {
		metric = core.DefaultMetric
	}
	top := newTopK(k)
	stats, err := e.run(ctx, q, opts, func(ps *core.PerfectSubgraph) bool {
		top.offer(core.Ranked{PerfectSubgraph: ps, Score: metric(q, e.snap.g, ps)})
		return true
	})
	if err != nil {
		return nil, stats, err
	}
	opts.Trace.EnterStage(obs.StageMerge)
	mergeSp := opts.Trace.StartSpan("merge")
	mergeStart := time.Now()
	ranked := top.ranked()
	if tr := opts.Trace; tr != nil {
		tr.Merge = time.Since(mergeStart)
	}
	mergeSp.End()
	return ranked, stats, nil
}
