package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/generator"
	"repro/internal/graph"
)

func newTestServer(t *testing.T, g *graph.Graph, cfg ServerConfig) (*httptest.Server, *Engine) {
	t.Helper()
	e := New(g, Config{Workers: 4})
	ts := httptest.NewServer(NewServer(e, cfg))
	t.Cleanup(ts.Close)
	return ts, e
}

func postMatch(t *testing.T, url string, req MatchRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/match", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestServerMatch(t *testing.T) {
	g := generator.Synthetic(400, 1.2, 10, 73)
	q := generator.SamplePattern(g, generator.PatternOptions{Nodes: 3, Alpha: 1.2, Seed: 74})
	ts, e := newTestServer(t, g, ServerConfig{})

	want, err := e.Match(context.Background(), q, PlusQuery())
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postMatch(t, ts.URL, MatchRequest{Pattern: graph.FormatString(q), Mode: "match+"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var mr MatchResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Matches) != want.Len() {
		t.Fatalf("server returned %d matches, engine %d", len(mr.Matches), want.Len())
	}
	for i, m := range mr.Matches {
		if m.Center != want.Subgraphs[i].Center || len(m.Nodes) != len(want.Subgraphs[i].Nodes) {
			t.Errorf("match %d diverges from direct engine result", i)
		}
		if len(m.Rel) != q.NumNodes() {
			t.Errorf("match %d: rel has %d pattern nodes, want %d", i, len(m.Rel), q.NumNodes())
		}
	}
	if mr.Stats.BallsExamined != want.Stats.BallsExamined {
		t.Errorf("stats diverge: %+v vs %+v", mr.Stats, want.Stats)
	}
}

func TestServerTopK(t *testing.T) {
	g := generator.Synthetic(400, 1.2, 10, 79)
	q := generator.SamplePattern(g, generator.PatternOptions{Nodes: 3, Alpha: 1.2, Seed: 80})
	ts, _ := newTestServer(t, g, ServerConfig{})

	resp, body := postMatch(t, ts.URL, MatchRequest{
		Pattern: graph.FormatString(q), TopK: 2, Metric: "compactness",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var mr MatchResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Matches) > 2 {
		t.Fatalf("top_k=2 returned %d matches", len(mr.Matches))
	}
	var prev float64 = 2 // scores are in (0,1]
	for i, m := range mr.Matches {
		if m.Score == nil {
			t.Fatalf("match %d: ranked response missing score", i)
		}
		if *m.Score > prev {
			t.Error("scores not descending")
		}
		prev = *m.Score
	}
}

func TestServerErrors(t *testing.T) {
	g := generator.Synthetic(200, 1.2, 10, 83)
	ts, _ := newTestServer(t, g, ServerConfig{})

	cases := []struct {
		name   string
		req    MatchRequest
		status int
	}{
		{"missing pattern", MatchRequest{}, http.StatusBadRequest},
		{"malformed pattern", MatchRequest{Pattern: "bogus directive"}, http.StatusBadRequest},
		{"disconnected pattern", MatchRequest{Pattern: "node a l0\nnode b l1\n"}, http.StatusBadRequest},
		{"unknown mode", MatchRequest{Pattern: "edge a b", Mode: "nope"}, http.StatusBadRequest},
		{"unknown metric", MatchRequest{Pattern: "edge a b", TopK: 1, Metric: "nope"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postMatch(t, ts.URL, tc.req)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			var e errorJSON
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error response not structured: %s", body)
			}
		})
	}

	// Invalid JSON body.
	resp, err := http.Post(ts.URL+"/match", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid JSON: status %d", resp.StatusCode)
	}

	// Wrong methods.
	resp, err = http.Get(ts.URL + "/match")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /match: status %d", resp.StatusCode)
	}
}

func TestServerDeadline(t *testing.T) {
	// A graph big enough that a full plain scan cannot finish in 1ms.
	g := generator.Synthetic(8000, 1.2, 5, 89)
	q := generator.SamplePattern(g, generator.PatternOptions{Nodes: 4, Alpha: 1.2, Seed: 90})
	ts, _ := newTestServer(t, g, ServerConfig{DefaultTimeout: time.Millisecond})

	resp, body := postMatch(t, ts.URL, MatchRequest{Pattern: graph.FormatString(q)})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
}

func TestServerGraphAndHealth(t *testing.T) {
	g := generator.Synthetic(300, 1.2, 10, 97)
	ts, e := newTestServer(t, g, ServerConfig{})
	e.Snapshot().PrepareBalls(1)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/graph")
	if err != nil {
		t.Fatal(err)
	}
	var info GraphInfoJSON
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != g.NumNodes() || info.Edges != g.NumEdges() {
		t.Errorf("graph info %+v does not match %v", info, g)
	}
	if len(info.PreparedRadii) != 1 || info.PreparedRadii[0] != 1 {
		t.Errorf("prepared radii %v, want [1]", info.PreparedRadii)
	}
}

// TestServerConcurrentRequests floods the handler from many clients — with
// novel labels in some patterns — to exercise the race-free parse path under
// real HTTP concurrency.
func TestServerConcurrentRequests(t *testing.T) {
	g := generator.Synthetic(300, 1.2, 10, 101)
	q := generator.SamplePattern(g, generator.PatternOptions{Nodes: 3, Alpha: 1.2, Seed: 102})
	ts, _ := newTestServer(t, g, ServerConfig{})
	patterns := []string{
		graph.FormatString(q),
		"node a l0\nnode b some-novel-label\nedge a b\n",
		"edge x y\nedge y x\n",
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				req := MatchRequest{Pattern: patterns[(c+rep)%len(patterns)]}
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/match", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d", resp.StatusCode)
				}
			}
		}(c)
	}
	wg.Wait()
}
