package engine

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/generator"
	"repro/internal/graph"
)

// testWorkload builds a small synthetic data graph plus a sampled pattern
// that is guaranteed to have matches.
func testWorkload(t testing.TB, n int, seed int64) (q, g *graph.Graph) {
	t.Helper()
	g = generator.Synthetic(n, 1.2, 10, seed)
	q = generator.SamplePattern(g, generator.PatternOptions{Nodes: 4, Alpha: 1.2, Seed: seed + 1})
	if q.NumNodes() == 0 {
		t.Fatal("sampled an empty pattern")
	}
	return q, g
}

func mustMatch(t testing.TB, e *Engine, q *graph.Graph, opts QueryOptions) *core.Result {
	t.Helper()
	res, err := e.Match(context.Background(), q, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustCoreMatch(t testing.TB, q, g *graph.Graph, opts core.Options) *core.Result {
	t.Helper()
	res, err := core.MatchWith(q, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMatchParityWithCore checks the engine returns byte-for-byte the result
// of core.MatchWith — subgraphs, relations, dedup tie-breaking and stats —
// for plain Match and for Match+, at several worker counts.
func TestMatchParityWithCore(t *testing.T) {
	q, g := testWorkload(t, 600, 3)
	cases := []struct {
		name string
		opts QueryOptions
	}{
		{"plain", QueryOptions{}},
		{"plus", PlusQuery()},
		{"dualFilterOnly", QueryOptions{DualFilter: true}},
		{"pruningOnly", QueryOptions{ConnectivityPruning: true}},
		{"radiusOverride", QueryOptions{Radius: 1}},
	}
	for _, workers := range []int{1, 4} {
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				want := mustCoreMatch(t, q, g, tc.opts.coreOptions())
				e := New(g, Config{Workers: workers})
				got := mustMatch(t, e, q, tc.opts)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d: engine result diverges from core.MatchWith\n got: %d subgraphs, stats %+v\nwant: %d subgraphs, stats %+v",
						workers, got.Len(), got.Stats, want.Len(), want.Stats)
				}
			})
		}
	}
}

// TestMatchNoMatchPattern exercises both prefilter paths on a pattern whose
// label exists nowhere in the data graph.
func TestMatchNoMatchPattern(t *testing.T) {
	_, g := testWorkload(t, 200, 5)
	b := graph.NewBuilder(g.Labels().Clone())
	u := b.AddNode("no-such-label")
	v := b.AddNode("no-such-label")
	_ = b.AddEdge(u, v)
	q := b.Build()
	for _, opts := range []QueryOptions{{}, {DualFilter: true}} {
		e := New(g, Config{Workers: 2})
		res := mustMatch(t, e, q, opts)
		if !res.Empty() {
			t.Fatalf("opts %+v: expected no matches, got %d", opts, res.Len())
		}
		if res.Stats.BallsSkipped != g.NumNodes() {
			t.Fatalf("opts %+v: every center should be skipped, got %d of %d",
				opts, res.Stats.BallsSkipped, g.NumNodes())
		}
	}
}

func TestMatchErrors(t *testing.T) {
	_, g := testWorkload(t, 100, 7)
	e := New(g, Config{})
	if _, err := e.Match(context.Background(), graph.NewBuilder(g.Labels().Clone()).Build(), QueryOptions{}); err == nil {
		t.Error("empty pattern: expected an error")
	}
	b := graph.NewBuilder(g.Labels().Clone())
	b.AddNode("l0")
	b.AddNode("l1") // no edge: disconnected
	if _, err := e.Match(context.Background(), b.Build(), QueryOptions{}); err == nil {
		t.Error("disconnected pattern: expected an error")
	}
}

// TestPreparedBallsParity checks that prepared (cached) balls change nothing
// about the answer, and that the cache bookkeeping works.
func TestPreparedBallsParity(t *testing.T) {
	q, g := testWorkload(t, 400, 11)
	dq, _ := graph.Diameter(q)
	want := mustCoreMatch(t, q, g, core.Options{})

	snap := NewSnapshot(g)
	if n := snap.PrepareBalls(dq); n != g.NumNodes() {
		t.Fatalf("PrepareBalls: prepared %d balls, want %d", n, g.NumNodes())
	}
	if got := snap.PreparedRadii(); !reflect.DeepEqual(got, []int{dq}) {
		t.Fatalf("PreparedRadii = %v, want [%d]", got, dq)
	}
	e := NewWithSnapshot(snap, Config{Workers: 4})
	if got := mustMatch(t, e, q, QueryOptions{}); !reflect.DeepEqual(got, want) {
		t.Error("prepared balls changed the result")
	}
	snap.DropBalls(dq)
	if got := snap.PreparedRadii(); len(got) != 0 {
		t.Fatalf("after DropBalls, PreparedRadii = %v", got)
	}
	if got := mustMatch(t, e, q, QueryOptions{}); !reflect.DeepEqual(got, want) {
		t.Error("dropping the cache changed the result")
	}
}

// TestParsePatternLabelIsolation checks that parsing a pattern with novel
// labels does not grow the snapshot's shared table, while known labels keep
// their identifiers.
func TestParsePatternLabelIsolation(t *testing.T) {
	_, g := testWorkload(t, 100, 13)
	snap := NewSnapshot(g)
	before := g.Labels().Len()

	q, err := snap.ParsePattern("node a l0\nnode b brand-new-label\nedge a b\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.Labels().Len() != before {
		t.Fatalf("snapshot label table grew from %d to %d", before, g.Labels().Len())
	}
	if q.Label(0) != g.Labels().ID("l0") {
		t.Error("known label lost its shared identifier")
	}
	if q.Labels().ID("brand-new-label") == graph.NoLabel {
		t.Error("novel label missing from the pattern's private table")
	}
	if _, err := snap.ParsePattern(""); err == nil {
		t.Error("empty pattern text: expected an error")
	}
	if _, err := snap.ParsePattern("bogus line"); err == nil {
		t.Error("malformed pattern text: expected an error")
	}
}

// TestStreamMatchesMatch checks the streamed set of subgraphs equals the
// collected result (up to ordering, which streaming does not define).
func TestStreamMatchesMatch(t *testing.T) {
	q, g := testWorkload(t, 500, 17)
	e := New(g, Config{Workers: 4})
	want := mustMatch(t, e, q, PlusQuery())

	s := e.Stream(context.Background(), q, PlusQuery())
	var sigs []string
	for ps := range s.C {
		sigs = append(sigs, ps.Signature())
	}
	stats, err := s.Wait()
	if err != nil {
		t.Fatal(err)
	}
	wantSigs := make([]string, 0, want.Len())
	for _, ps := range want.Subgraphs {
		wantSigs = append(wantSigs, ps.Signature())
	}
	sort.Strings(sigs)
	sort.Strings(wantSigs)
	if !reflect.DeepEqual(sigs, wantSigs) {
		t.Errorf("streamed %d distinct subgraphs, Match found %d", len(sigs), len(wantSigs))
	}
	if stats.BallsExamined != want.Stats.BallsExamined {
		t.Errorf("stream examined %d balls, Match %d", stats.BallsExamined, want.Stats.BallsExamined)
	}
}

// TestStreamPatternError checks validation errors surface through Wait.
func TestStreamPatternError(t *testing.T) {
	_, g := testWorkload(t, 100, 19)
	e := New(g, Config{})
	s := e.Stream(context.Background(), graph.NewBuilder(g.Labels().Clone()).Build(), QueryOptions{})
	for range s.C {
	}
	if _, err := s.Wait(); err == nil {
		t.Error("expected a pattern validation error from Wait")
	}
}

// TestMatchTopKParity checks MatchTopK agrees with ranking the full result
// via Result.TopK for every built-in metric.
func TestMatchTopKParity(t *testing.T) {
	g := generator.Synthetic(500, 1.2, 10, 23)
	e := New(g, Config{Workers: 4})
	// Pick a pattern with enough matches to make ranking meaningful.
	var q *graph.Graph
	var full *core.Result
	for seed := int64(0); seed < 32; seed++ {
		cand := generator.SamplePattern(g, generator.PatternOptions{Nodes: 3, Alpha: 1.2, Seed: seed})
		if res := mustMatch(t, e, cand, QueryOptions{}); res.Len() >= 3 {
			q, full = cand, res
			break
		}
	}
	if q == nil {
		t.Fatal("no sampled pattern yielded at least 3 matches")
	}
	metrics := map[string]core.Metric{
		"default":     nil,
		"compactness": core.ScoreCompactness,
		"density":     core.ScoreDensity,
		"selectivity": core.ScoreSelectivity,
	}
	for name, metric := range metrics {
		for _, k := range []int{1, 2, full.Len(), 0} {
			got, _, err := e.MatchTopK(context.Background(), q, k, metric, QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			want := full.TopK(q, g, k, metric)
			if len(got) != len(want) {
				t.Fatalf("%s k=%d: got %d ranked, want %d", name, k, len(got), len(want))
			}
			for i := range got {
				if got[i].Score != want[i].Score || got[i].Signature() != want[i].Signature() {
					t.Errorf("%s k=%d: rank %d diverges (score %v vs %v)",
						name, k, i, got[i].Score, want[i].Score)
				}
			}
		}
	}
}

// TestMatchBatchParity checks every batch member gets exactly its individual
// Match result, including invalid and unmatchable members.
func TestMatchBatchParity(t *testing.T) {
	g := generator.Synthetic(500, 1.2, 10, 29)
	q1 := generator.SamplePattern(g, generator.PatternOptions{Nodes: 3, Alpha: 1.2, Seed: 31})
	q2 := generator.SamplePattern(g, generator.PatternOptions{Nodes: 4, Alpha: 1.2, Seed: 37})
	q3 := generator.SamplePattern(g, generator.PatternOptions{Nodes: 5, Alpha: 1.3, Seed: 41})
	// An unmatchable pattern: a label the data graph does not contain.
	nb := graph.NewBuilder(g.Labels().Clone())
	nu := nb.AddNode("never-seen")
	nv := nb.AddNode("never-seen")
	_ = nb.AddEdge(nu, nv)
	qNone := nb.Build()
	// An invalid pattern.
	qBad := graph.NewBuilder(g.Labels().Clone()).Build()

	batch := []BatchQuery{
		{Pattern: q1, Opts: QueryOptions{}},
		{Pattern: q2, Opts: PlusQuery()},
		{Pattern: q3, Opts: QueryOptions{DualFilter: true}},
		{Pattern: qNone, Opts: QueryOptions{DualFilter: true}},
		{Pattern: qBad, Opts: QueryOptions{}},
		{Pattern: q1, Opts: QueryOptions{Limit: 1}},
	}
	e := New(g, Config{Workers: 4})
	results := e.MatchBatch(context.Background(), batch)
	if len(results) != len(batch) {
		t.Fatalf("got %d results for %d queries", len(results), len(batch))
	}
	for i := 0; i < 4; i++ {
		if results[i].Err != nil {
			t.Fatalf("query %d: %v", i, results[i].Err)
		}
		want := mustMatch(t, e, batch[i].Pattern, batch[i].Opts)
		if !reflect.DeepEqual(results[i].Result, want) {
			t.Errorf("query %d: batch result diverges from individual Match (%d vs %d subgraphs)",
				i, results[i].Result.Len(), want.Len())
		}
	}
	if results[4].Err == nil {
		t.Error("invalid member: expected an error")
	}
	if results[5].Err != nil || results[5].Result.Len() != 1 {
		t.Errorf("limited member: want exactly 1 subgraph, got %v / %v", results[5].Result, results[5].Err)
	}
}

// TestCandidateCenters cross-checks the snapshot's candidate index against a
// brute-force scan.
func TestCandidateCenters(t *testing.T) {
	q, g := testWorkload(t, 300, 43)
	snap := NewSnapshot(g)
	got := snap.CandidateCenters(q)
	for v := int32(0); v < int32(g.NumNodes()); v++ {
		want := false
		for u := int32(0); u < int32(q.NumNodes()); u++ {
			if q.Label(u) == g.Label(v) {
				want = true
				break
			}
		}
		if got.Contains(v) != want {
			t.Fatalf("node %d: candidate=%v, want %v", v, got.Contains(v), want)
		}
	}
}

// TestEvalCentersMatchesPlainMatch drives the exported per-center evaluator
// over every candidate center and checks the deduplicated outcomes equal a
// plain Match — the contract internal/live relies on when it re-evaluates
// dirty centers after an update batch.
func TestEvalCentersMatchesPlainMatch(t *testing.T) {
	q, g := testWorkload(t, 400, 11)
	e := New(g, Config{Workers: 4})
	want := mustMatch(t, e, q, QueryOptions{})

	centers := e.Snapshot().CandidateCenters(q).Slice()
	perCenter := make([]*core.PerfectSubgraph, len(centers))
	err := e.EvalCenters(context.Background(), q, 0, centers, nil, func(i int, ps *core.PerfectSubgraph) {
		perCenter[i] = ps
	})
	if err != nil {
		t.Fatal(err)
	}
	var stats core.Stats
	got := core.DedupSubgraphs(perCenter, &stats)
	core.SortSubgraphs(got)
	if !reflect.DeepEqual(got, want.Subgraphs) {
		t.Fatalf("EvalCenters outcomes diverge: %d subgraphs vs %d", len(got), want.Len())
	}
	if err := e.EvalCenters(context.Background(), nil, 0, nil, nil, nil); err == nil {
		t.Fatal("nil pattern should be rejected")
	}
}
