package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
)

// ServerConfig tunes the HTTP front end. Zero values take the defaults
// noted on each field.
type ServerConfig struct {
	// DefaultTimeout is the per-request deadline applied when a request
	// does not ask for one (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the deadline a request may ask for (default 60s).
	MaxTimeout time.Duration
	// MaxBodyBytes caps the request body (default 8 MiB).
	MaxBodyBytes int64
}

// WithDefaults returns the config with every zero field replaced by its
// documented default. Handlers embedding this one (internal/live) apply it
// so both layers agree on limits.
func (c ServerConfig) WithDefaults() ServerConfig {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// MatchRequest is the JSON body of POST /match.
type MatchRequest struct {
	// Pattern is the pattern graph in the text format of internal/graph
	// (node/edge lines). Required.
	Pattern string `json:"pattern"`
	// Mode selects the optimization bundle: "match" (default, plain
	// Fig. 3) or "match+" (minimization, dual filter, connectivity
	// pruning).
	Mode string `json:"mode,omitempty"`
	// Radius overrides the ball radius; 0 uses the pattern diameter.
	Radius int `json:"radius,omitempty"`
	// Limit stops the query after this many distinct subgraphs; 0 = all.
	Limit int `json:"limit,omitempty"`
	// TopK returns only the k best matches under Metric; 0 returns every
	// match unranked.
	TopK int `json:"top_k,omitempty"`
	// Metric names the ranking metric for TopK: "default", "compactness",
	// "density" or "selectivity".
	Metric string `json:"metric,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds, clamped to
	// the server's MaxTimeout; 0 uses DefaultTimeout.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// MatchResponse is the JSON body answering POST /match.
type MatchResponse struct {
	Matches   []SubgraphJSON `json:"matches"`
	Stats     StatsJSON      `json:"stats"`
	ElapsedMS float64        `json:"elapsed_ms"`
}

// SubgraphJSON serializes one perfect subgraph. Rel maps pattern node ids
// (as decimal strings, matching the node order of the submitted pattern) to
// their data-node matches inside the subgraph.
type SubgraphJSON struct {
	Center int32              `json:"center"`
	Score  *float64           `json:"score,omitempty"`
	Nodes  []int32            `json:"nodes"`
	Edges  [][2]int32         `json:"edges"`
	Rel    map[string][]int32 `json:"rel"`
}

// StatsJSON serializes core.Stats.
type StatsJSON struct {
	BallsExamined int `json:"balls_examined"`
	BallsSkipped  int `json:"balls_skipped"`
	PairsRemoved  int `json:"pairs_removed"`
	Duplicates    int `json:"duplicates"`
	MinimizedFrom int `json:"minimized_from,omitempty"`
}

// GraphInfoJSON answers GET /graph.
type GraphInfoJSON struct {
	Name          string `json:"name"`
	Nodes         int    `json:"nodes"`
	Edges         int    `json:"edges"`
	Labels        int    `json:"labels"`
	Workers       int    `json:"workers"`
	PreparedRadii []int  `json:"prepared_radii"`
}

type errorJSON struct {
	Error string `json:"error"`
}

// NewServer wraps an engine as an http.Handler exposing:
//
//	GET  /healthz  liveness probe
//	GET  /graph    data-graph and engine summary
//	POST /match    run one strong-simulation query (MatchRequest/MatchResponse)
//
// Requests are served concurrently against the engine's shared snapshot;
// each gets a deadline (request-supplied, clamped) whose expiry answers 504.
// cmd/strongsimd serves the live variant of this handler standalone; tests
// and examples mount it wherever convenient.
func NewServer(e *Engine, cfg ServerConfig) http.Handler {
	return NewDynamicServer(func() *Engine { return e }, cfg)
}

// NewDynamicServer is NewServer over an engine *provider*: each request
// resolves the engine once, up front, and is served entirely against that
// engine. A mutable deployment (internal/live) hands in its
// latest-version lookup so one-shot /match queries always answer against the
// newest published snapshot while in-flight requests keep the consistent
// view they started with. The provider must be safe for concurrent use and
// must never return nil.
func NewDynamicServer(engine func() *Engine, cfg ServerConfig) http.Handler {
	s := &server{engine: engine, cfg: cfg.WithDefaults()}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/graph", s.handleGraph)
	mux.HandleFunc("/match", s.handleMatch)
	return mux
}

type server struct {
	engine func() *Engine
	cfg    ServerConfig
}

// WriteJSON writes v as a JSON response body with the given status.
// Exported so handlers layered over this one (internal/live) speak the
// same wire format.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError writes the {"error": ...} body every handler in this
// repository answers failures with.
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleGraph(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	e := s.engine()
	snap := e.Snapshot()
	g := snap.Graph()
	WriteJSON(w, http.StatusOK, GraphInfoJSON{
		Name:          g.Name(),
		Nodes:         g.NumNodes(),
		Edges:         g.NumEdges(),
		Labels:        g.Labels().Len(),
		Workers:       e.Workers(),
		PreparedRadii: snap.PreparedRadii(),
	})
}

func metricByName(name string) (core.Metric, error) {
	switch name {
	case "", "default":
		return core.DefaultMetric, nil
	case "compactness":
		return core.ScoreCompactness, nil
	case "density":
		return core.ScoreDensity, nil
	case "selectivity":
		return core.ScoreSelectivity, nil
	default:
		return nil, fmt.Errorf("unknown metric %q", name)
	}
}

func (s *server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		WriteError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	e := s.engine() // one resolution: the whole request sees one version
	var req MatchRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Pattern == "" {
		WriteError(w, http.StatusBadRequest, "missing pattern")
		return
	}
	var opts QueryOptions
	switch req.Mode {
	case "", "match":
		// plain Fig. 3 Match
	case "match+":
		opts = PlusQuery()
	default:
		WriteError(w, http.StatusBadRequest, "unknown mode %q (want \"match\" or \"match+\")", req.Mode)
		return
	}
	opts.Radius = req.Radius
	opts.Limit = req.Limit
	metric, err := metricByName(req.Metric)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	q, err := e.Snapshot().ParsePattern(req.Pattern)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "parsing pattern: %v", err)
		return
	}

	start := time.Now()
	var resp MatchResponse
	if req.TopK > 0 {
		ranked, stats, err := e.MatchTopK(ctx, q, req.TopK, metric, opts)
		if err != nil {
			s.writeMatchError(w, err)
			return
		}
		resp.Stats = statsJSON(stats)
		resp.Matches = make([]SubgraphJSON, 0, len(ranked))
		for _, rk := range ranked {
			sj := subgraphJSON(rk.PerfectSubgraph)
			score := rk.Score
			sj.Score = &score
			resp.Matches = append(resp.Matches, sj)
		}
	} else {
		res, err := e.Match(ctx, q, opts)
		if err != nil {
			s.writeMatchError(w, err)
			return
		}
		resp.Stats = statsJSON(res.Stats)
		resp.Matches = make([]SubgraphJSON, 0, res.Len())
		for _, ps := range res.Subgraphs {
			resp.Matches = append(resp.Matches, subgraphJSON(ps))
		}
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	WriteJSON(w, http.StatusOK, resp)
}

func (s *server) writeMatchError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		WriteError(w, http.StatusGatewayTimeout, "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		// The client went away; the status is moot but 499-style closure
		// keeps logs honest.
		WriteError(w, http.StatusRequestTimeout, "request cancelled")
	default:
		WriteError(w, http.StatusBadRequest, "%v", err)
	}
}

func statsJSON(st core.Stats) StatsJSON {
	return StatsJSON{
		BallsExamined: st.BallsExamined,
		BallsSkipped:  st.BallsSkipped,
		PairsRemoved:  st.PairsRemoved,
		Duplicates:    st.Duplicates,
		MinimizedFrom: st.MinimizedFrom,
	}
}

// ToSubgraphJSON serializes one perfect subgraph in the wire form of
// POST /match responses; the live handler reuses it so standing-query
// results and one-shot match results read identically.
func ToSubgraphJSON(ps *core.PerfectSubgraph) SubgraphJSON { return subgraphJSON(ps) }

func subgraphJSON(ps *core.PerfectSubgraph) SubgraphJSON {
	rel := make(map[string][]int32, len(ps.Rel))
	for u, matches := range ps.Rel {
		rel[strconv.Itoa(int(u))] = matches
	}
	return SubgraphJSON{
		Center: ps.Center,
		Nodes:  ps.Nodes,
		Edges:  ps.Edges,
		Rel:    rel,
	}
}
