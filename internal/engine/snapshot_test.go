package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/generator"
)

// TestParsePatternErrors covers the failure paths of Snapshot.ParsePattern:
// every malformed input must answer an error, not a zero-value pattern.
func TestParsePatternErrors(t *testing.T) {
	g := generator.Synthetic(100, 1.2, 6, 11)
	snap := NewSnapshot(g)

	cases := []struct {
		name, src, want string
	}{
		{"empty source", "", "empty"},
		{"blank lines only", "\n  \n# comment\n", "empty"},
		{"unknown directive", "bogus directive", "unknown directive"},
		{"node arity", "node a", "want 'node <id> <label>'"},
		{"edge arity", "edge a", "want 'edge <id> <id>'"},
		{"graph arity", "graph", "want 'graph <name>'"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := snap.ParsePattern(tc.src)
			if err == nil {
				t.Fatalf("ParsePattern(%q) = %v, want error", tc.src, q)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParsePattern(%q) error %q, want substring %q", tc.src, err, tc.want)
			}
		})
	}
}

// TestParsePatternNovelLabels proves patterns whose labels the data graph
// has never seen parse fine, leave the snapshot's shared label table
// untouched, and answer the correct empty result.
func TestParsePatternNovelLabels(t *testing.T) {
	g := generator.Synthetic(100, 1.2, 6, 13)
	e := New(g, Config{Workers: 2})
	snap := e.Snapshot()
	before := g.Labels().Len()

	q, err := snap.ParsePattern("node a never-seen-label\nnode b also-novel\nedge a b\nedge b a\n")
	if err != nil {
		t.Fatalf("novel-label pattern should parse: %v", err)
	}
	if q.NumNodes() != 2 || q.NumEdges() != 2 {
		t.Fatalf("parsed %v", q)
	}
	if got := g.Labels().Len(); got != before {
		t.Fatalf("shared label table grew %d -> %d: ParsePattern leaked an intern", before, got)
	}

	// No candidates anywhere: the query's correct answer is no matches.
	res, err := e.Match(context.Background(), q, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("novel-label pattern matched %d subgraphs", res.Len())
	}
	if res.Stats.BallsSkipped != g.NumNodes() {
		t.Fatalf("expected every center skipped, got %+v", res.Stats)
	}

	// Mixed: one known label keeps its id so the pattern stays
	// label-compatible with the data graph.
	q2, err := snap.ParsePattern("node a l0\nnode b fresh-label\nedge a b\n")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Label(0) != g.Labels().ID("l0") {
		t.Errorf("known label re-interned: pattern id %d, data id %d", q2.Label(0), g.Labels().ID("l0"))
	}
}
